//! # autotype-negative — automatic negative-example generation
//!
//! AutoType does not ask users for negative examples; it *mutates* the
//! positive examples (§6 of the paper). Random strings are useless — any
//! `int`-accepting function separates them from numeric positives — so the
//! paper defines a strict hierarchy of three mutation strategies ordered by
//! how much they perturb:
//!
//! * **S1 mutate-preserve-structure** — replace in-alphabet non-punctuation
//!   characters with other in-alphabet non-punctuation characters, leaving
//!   structural punctuation intact. Breaks checksums (credit card, ISBN,
//!   VIN) but keeps e.g. IPv6 valid.
//! * **S2 mutate-preserve-alphabet** — additionally mutate punctuation
//!   (still drawing from the inferred alphabet). Breaks structure-based
//!   types (dates, IPv6).
//! * **S3 mutate-random** — replace with arbitrary characters. Needed for
//!   types whose alphabet *is* the constraint (gene sequences, Roman
//!   numerals).
//!
//! Proposition 1: `S1(s) ⊆ S2(s) ⊆ S3(s)`, which lets Algorithm 2 try the
//! strategies in order until candidate functions can separate `P` from the
//! generated `N` (the escalation driver lives in the `autotype` facade).

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;

/// The three mutation strategies, in hierarchy order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strategy {
    /// Mutate-preserve-structure.
    S1,
    /// Mutate-preserve-alphabet.
    S2,
    /// Mutate-random.
    S3,
}

impl Strategy {
    /// Hierarchy order, least-perturbing first (Algorithm 2's loop).
    pub const HIERARCHY: [Strategy; 3] = [Strategy::S1, Strategy::S2, Strategy::S3];
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::S1 => write!(f, "S1-preserve-structure"),
            Strategy::S2 => write!(f, "S2-preserve-alphabet"),
            Strategy::S3 => write!(f, "S3-random"),
        }
    }
}

/// Whether a character counts as punctuation for alphabet inference: the
/// paper treats punctuation (and whitespace) as structural delimiters, and
/// letters/digits as content (Definition 5).
pub fn is_punct(c: char) -> bool {
    !c.is_alphanumeric()
}

/// The inferred alphabet `Σ(P)` of a positive-example set (Definition 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    /// All characters appearing in `P`.
    pub all: BTreeSet<char>,
    /// In-alphabet non-punctuation characters `Σ̄P(P)`.
    pub non_punct: BTreeSet<char>,
    /// In-alphabet punctuation characters.
    pub punct: BTreeSet<char>,
    /// The three replacement pools (S1 / S2 / S3), materialized once at
    /// inference time — `mutate` draws per *character*, and re-collecting a
    /// `Vec<char>` for every mutated position dominated generation cost.
    non_punct_pool: Vec<char>,
    all_pool: Vec<char>,
    full_pool: Vec<char>,
}

impl Alphabet {
    /// Infer the alphabet from positive examples.
    pub fn infer<S: AsRef<str>>(positives: &[S]) -> Alphabet {
        let mut all = BTreeSet::new();
        for s in positives {
            all.extend(s.as_ref().chars());
        }
        let (punct, non_punct): (BTreeSet<char>, BTreeSet<char>) =
            all.iter().partition(|c| is_punct(**c));
        let non_punct_pool = non_punct.iter().copied().collect();
        let all_pool = all.iter().copied().collect();
        Alphabet {
            all,
            non_punct,
            punct,
            non_punct_pool,
            all_pool,
            full_pool: FULL_ALPHABET.chars().collect(),
        }
    }

    /// The replacement pool a strategy draws from when mutating `c`;
    /// `None` means the strategy leaves `c` untouched. The pools are
    /// precomputed, so this is a set lookup plus a slice borrow.
    fn pool(&self, strategy: Strategy, c: char) -> Option<&[char]> {
        match strategy {
            Strategy::S1 => self
                .non_punct
                .contains(&c)
                .then_some(self.non_punct_pool.as_slice()),
            Strategy::S2 => self.all.contains(&c).then_some(self.all_pool.as_slice()),
            Strategy::S3 => self.all.contains(&c).then_some(self.full_pool.as_slice()),
        }
    }
}

/// The "full English alphabet Σ" for S3: letters, digits, and common ASCII
/// punctuation.
pub const FULL_ALPHABET: &str =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,:;-_/#@!?'\"()[]{}+*=%&<>";

/// Configuration for negative generation.
#[derive(Debug, Clone, Copy)]
pub struct MutationConfig {
    /// Per-character mutation probability `p` (§6).
    pub char_probability: f64,
    /// Probability of additionally applying a length mutation (append or
    /// delete a character) — the orthogonal strategy mentioned at the end
    /// of §6.
    pub length_probability: f64,
    /// Negatives generated per positive example ("a large number of
    /// negative examples for each positive example", Algorithm 2).
    pub per_positive: usize,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            char_probability: 0.35,
            length_probability: 0.15,
            per_positive: 10,
        }
    }
}

/// Mutate one string under a strategy. At least one character is always
/// mutated (otherwise the "negative" would equal the positive).
pub fn mutate(
    s: &str,
    strategy: Strategy,
    alphabet: &Alphabet,
    config: &MutationConfig,
    rng: &mut StdRng,
) -> String {
    let chars: Vec<char> = s.chars().collect();
    let mut out: Vec<char> = chars.clone();
    let mut mutated = false;
    for (i, c) in chars.iter().enumerate() {
        if let Some(pool) = alphabet.pool(strategy, *c) {
            if rng.gen_bool(config.char_probability) {
                let replacement = pool[rng.gen_range(0..pool.len())];
                if replacement != *c {
                    mutated = true;
                }
                out[i] = replacement;
            }
        }
    }
    // Force at least one mutation on a mutable position.
    if !mutated {
        let mutable: Vec<usize> = chars
            .iter()
            .enumerate()
            .filter(|(_, c)| alphabet.pool(strategy, **c).is_some())
            .map(|(i, _)| i)
            .collect();
        if !mutable.is_empty() {
            let i = mutable[rng.gen_range(0..mutable.len())];
            let pool = alphabet.pool(strategy, chars[i]).expect("mutable position");
            let mut replacement = pool[rng.gen_range(0..pool.len())];
            let mut guard = 0;
            while replacement == chars[i] && pool.len() > 1 && guard < 32 {
                replacement = pool[rng.gen_range(0..pool.len())];
                guard += 1;
            }
            out[i] = replacement;
        }
    }
    // Optional length mutation.
    if rng.gen_bool(config.length_probability) && !out.is_empty() {
        if rng.gen_bool(0.5) {
            let i = rng.gen_range(0..out.len());
            out.remove(i);
        } else {
            let source = &alphabet.non_punct_pool;
            if !source.is_empty() {
                let i = rng.gen_range(0..=out.len());
                out.insert(i, source[rng.gen_range(0..source.len())]);
            }
        }
    }
    out.into_iter().collect()
}

/// Generate-N-by-Mutation (Algorithm 2): mutate every positive
/// `config.per_positive` times, dropping mutants that collide with a
/// positive example.
pub fn generate_negatives<S: AsRef<str>>(
    positives: &[S],
    strategy: Strategy,
    config: &MutationConfig,
    rng: &mut StdRng,
) -> Vec<String> {
    let alphabet = Alphabet::infer(positives);
    let positive_set: BTreeSet<&str> = positives.iter().map(|s| s.as_ref()).collect();
    let mut out = Vec::with_capacity(positives.len() * config.per_positive);
    for p in positives {
        let mut produced = 0;
        let mut attempts = 0;
        while produced < config.per_positive && attempts < config.per_positive * 10 {
            attempts += 1;
            let mutant = mutate(p.as_ref(), strategy, &alphabet, config, rng);
            if !positive_set.contains(mutant.as_str()) && !mutant.is_empty() {
                out.push(mutant);
                produced += 1;
            }
        }
    }
    out
}

/// The naive baseline of Figure 10(c): fully random strings, unrelated to
/// the positives' alphabet or structure.
pub fn random_negatives(count: usize, rng: &mut StdRng) -> Vec<String> {
    let pool: Vec<char> = FULL_ALPHABET.chars().collect();
    (0..count)
        .map(|_| {
            let len = rng.gen_range(3..20);
            (0..len)
                .map(|_| pool[rng.gen_range(0..pool.len())])
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn alphabet_inference_matches_paper_example5() {
        // IPv4 addresses: Σ̄P = digits, punct = {'.'}.
        let positives = ["192.168.0.1", "10.0.0.255"];
        let a = Alphabet::infer(&positives);
        assert!(a.punct.contains(&'.'));
        assert_eq!(a.punct.len(), 1);
        assert!(a.non_punct.iter().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn alphabet_inference_date_example() {
        let positives = ["Jan 01, 2011"];
        let a = Alphabet::infer(&positives);
        assert!(a.punct.contains(&' '));
        assert!(a.punct.contains(&','));
        assert!(a.non_punct.contains(&'J'));
        assert!(a.non_punct.contains(&'0'));
    }

    #[test]
    fn s1_preserves_punctuation() {
        let positives = ["192.168.0.1"; 5];
        let a = Alphabet::infer(&positives);
        let cfg = MutationConfig {
            length_probability: 0.0,
            ..Default::default()
        };
        let mut r = rng();
        for _ in 0..50 {
            let m = mutate(positives[0], Strategy::S1, &a, &cfg, &mut r);
            assert_eq!(m.matches('.').count(), 3, "S1 must keep dots: {m}");
            assert!(m.chars().all(|c| c.is_ascii_digit() || c == '.'));
        }
    }

    #[test]
    fn s2_stays_in_alphabet() {
        let positives = ["4f:45b6:336:d336:e41b:8df4:696:e2"];
        let a = Alphabet::infer(&positives);
        let cfg = MutationConfig {
            length_probability: 0.0,
            ..Default::default()
        };
        let mut r = rng();
        let mut saw_colon_mutation = false;
        for _ in 0..200 {
            let m = mutate(positives[0], Strategy::S2, &a, &cfg, &mut r);
            assert!(
                m.chars().all(|c| a.all.contains(&c)),
                "S2 escaped alphabet: {m}"
            );
            if m.matches(':').count() != 7 {
                saw_colon_mutation = true;
            }
        }
        // Example 6: S2 must be able to perturb the ':' structure.
        assert!(saw_colon_mutation);
    }

    #[test]
    fn s3_can_leave_the_alphabet() {
        let positives = ["ACGTACGTACGT"];
        let a = Alphabet::infer(&positives);
        let cfg = MutationConfig {
            length_probability: 0.0,
            ..Default::default()
        };
        let mut r = rng();
        let mut escaped = false;
        for _ in 0..100 {
            let m = mutate(positives[0], Strategy::S3, &a, &cfg, &mut r);
            if m.chars().any(|c| !a.all.contains(&c)) {
                escaped = true;
                break;
            }
        }
        assert!(escaped, "S3 should produce out-of-alphabet characters");
    }

    #[test]
    fn proposition1_replacement_pools_nest() {
        // For every character, pool(S1) ⊆ pool(S2) ⊆ pool(S3).
        let positives = ["Jan 01, 2011", "Feb 28, 1999"];
        let a = Alphabet::infer(&positives);
        for c in a.all.iter() {
            let p1: BTreeSet<char> = a
                .pool(Strategy::S1, *c)
                .unwrap_or_default()
                .iter()
                .copied()
                .collect();
            let p2: BTreeSet<char> = a
                .pool(Strategy::S2, *c)
                .unwrap_or_default()
                .iter()
                .copied()
                .collect();
            let p3: BTreeSet<char> = a
                .pool(Strategy::S3, *c)
                .unwrap_or_default()
                .iter()
                .copied()
                .collect();
            assert!(p1.is_subset(&p2), "S1 ⊄ S2 for {c:?}");
            assert!(p2.is_subset(&p3), "S2 ⊄ S3 for {c:?}");
        }
    }

    #[test]
    fn mutants_differ_from_their_source() {
        let positives = ["4532015112830366"];
        let cfg = MutationConfig {
            length_probability: 0.0,
            char_probability: 0.05, // low probability — forcing kicks in
            per_positive: 20,
        };
        let mut r = rng();
        let negs = generate_negatives(&positives, Strategy::S1, &cfg, &mut r);
        assert_eq!(negs.len(), 20);
        for n in &negs {
            assert_ne!(n, positives[0]);
        }
    }

    #[test]
    fn s1_on_credit_cards_breaks_checksum_mostly() {
        // ~9/10 of digit mutations of a Luhn-valid number are Luhn-invalid.
        let positives = ["4532015112830366", "4556737586899855"];
        let cfg = MutationConfig {
            length_probability: 0.0,
            ..Default::default()
        };
        let mut r = rng();
        let negs = generate_negatives(&positives, Strategy::S1, &cfg, &mut r);
        let luhn = |s: &str| {
            s.bytes()
                .rev()
                .enumerate()
                .try_fold(0u32, |acc, (i, b)| {
                    if !b.is_ascii_digit() {
                        return None;
                    }
                    let mut d = (b - b'0') as u32;
                    if i % 2 == 1 {
                        d *= 2;
                        if d > 9 {
                            d -= 9;
                        }
                    }
                    Some(acc + d)
                })
                .map(|s| s % 10 == 0)
                .unwrap_or(false)
        };
        let invalid = negs.iter().filter(|n| !luhn(n)).count();
        assert!(
            invalid as f64 / negs.len() as f64 > 0.7,
            "most S1 mutants should fail Luhn ({invalid}/{})",
            negs.len()
        );
    }

    #[test]
    fn random_negatives_are_diverse() {
        let mut r = rng();
        let negs = random_negatives(50, &mut r);
        assert_eq!(negs.len(), 50);
        let unique: BTreeSet<&String> = negs.iter().collect();
        assert!(unique.len() > 45);
    }

    #[test]
    fn generation_is_deterministic() {
        let positives = ["192.168.0.1", "8.8.8.8"];
        let cfg = MutationConfig::default();
        let a = generate_negatives(
            &positives,
            Strategy::S2,
            &cfg,
            &mut StdRng::seed_from_u64(7),
        );
        let b = generate_negatives(
            &positives,
            Strategy::S2,
            &cfg,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn strategy_hierarchy_order() {
        assert!(Strategy::S1 < Strategy::S2);
        assert!(Strategy::S2 < Strategy::S3);
        assert_eq!(Strategy::HIERARCHY[0], Strategy::S1);
    }
}

//! Property-based tests for the mutation-strategy hierarchy (§6,
//! Proposition 1) over arbitrary positive-example sets.

use autotype_negative::{generate_negatives, is_punct, mutate, Alphabet, MutationConfig, Strategy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn example_strategy() -> impl proptest::strategy::Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-zA-Z0-9.:, -]{3,24}", 1..6)
}

proptest! {
    /// S1 never touches punctuation: every punctuation character of the
    /// source survives in place.
    #[test]
    fn s1_preserves_every_punctuation_position(positives in example_strategy(), seed in 0u64..1000) {
        let alphabet = Alphabet::infer(&positives);
        let cfg = MutationConfig {
            length_probability: 0.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for p in &positives {
            let m = mutate(p, Strategy::S1, &alphabet, &cfg, &mut rng);
            prop_assert_eq!(m.chars().count(), p.chars().count());
            for (orig, mutated) in p.chars().zip(m.chars()) {
                if is_punct(orig) {
                    prop_assert_eq!(orig, mutated, "S1 mutated punctuation in {:?} -> {:?}", p, m);
                }
            }
        }
    }

    /// S2 never leaves the inferred alphabet.
    #[test]
    fn s2_stays_within_inferred_alphabet(positives in example_strategy(), seed in 0u64..1000) {
        let alphabet = Alphabet::infer(&positives);
        let cfg = MutationConfig {
            length_probability: 0.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for p in &positives {
            let m = mutate(p, Strategy::S2, &alphabet, &cfg, &mut rng);
            for c in m.chars() {
                prop_assert!(alphabet.all.contains(&c), "S2 escaped alphabet: {:?} in {:?}", c, m);
            }
        }
    }

    /// Generated negatives never collide with a positive example and the
    /// requested count is honored.
    #[test]
    fn negatives_avoid_positives(positives in example_strategy(), seed in 0u64..1000) {
        let cfg = MutationConfig {
            per_positive: 5,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        // Degenerate inputs (e.g. a single-character alphabet) cannot
        // always produce distinct mutants; the full count is only
        // guaranteed with a rich enough non-punctuation alphabet.
        let alphabet = Alphabet::infer(&positives);
        for strategy in Strategy::HIERARCHY {
            let negs = generate_negatives(&positives, strategy, &cfg, &mut rng);
            prop_assert!(negs.len() <= positives.len() * 5);
            if alphabet.non_punct.len() >= 3 {
                prop_assert_eq!(negs.len(), positives.len() * 5);
            }
            for n in &negs {
                prop_assert!(!positives.contains(n));
                prop_assert!(!n.is_empty());
            }
        }
    }
}

//! Column-type detection over web tables (paper §9): synthesize detectors
//! for several types, then annotate a table corpus, exactly like the data-
//! preparation scenario in the paper's introduction (Figure 1).
//!
//! ```sh
//! cargo run --release --example detect_columns
//! ```

use autotype::{AutoType, AutoTypeConfig, BatchValidator, NegativeMode};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_rank::Method;
use autotype_tables::{
    detect_by_values_batched, generate_columns, SyncValueDetector, TableConfig, VALUE_THRESHOLD,
};
use autotype_typesys::by_slug;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let engine = AutoType::new(
        build_corpus(&CorpusConfig::default()),
        AutoTypeConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(7);

    // Synthesize a detector for each type of interest.
    let slugs = ["ipv4", "creditcard", "isbn", "email", "datetime"];
    let mut synthesized = Vec::new();
    for slug in slugs {
        let ty = by_slug(slug).unwrap();
        let positives = ty.examples(&mut rng, 20);
        let mut session = engine
            .session(ty.keyword(), &positives, NegativeMode::Hierarchy, &mut rng)
            .expect("session");
        let top = session
            .rank(Method::DnfS)
            .into_iter()
            .next()
            .expect("ranked");
        println!("{slug}: synthesized from {}", top.label);
        synthesized.push((slug, session, top));
    }

    // A small column corpus (mirrors the sales-transactions table of the
    // paper's Figure 1: typed columns, dirty values, missing headers).
    let columns = generate_columns(
        &TableConfig {
            scale: 0.01,
            untyped: 30,
            ..Default::default()
        },
        &mut rng,
    );
    println!(
        "\nannotating {} columns (>{:.0}% of values must pass):",
        columns.len(),
        VALUE_THRESHOLD * 100.0
    );

    // Batch the whole column × detector matrix through the engine's exec
    // pool: each synthesized validator becomes a thread-safe batch handle,
    // and the index-ordered merge keeps first-matching-type-wins semantics
    // identical at every worker count.
    let handles: Vec<(&'static str, BatchValidator<'_>)> = synthesized
        .iter()
        .filter_map(|(slug, session, top)| session.batch_validator(top).map(|bv| (*slug, bv)))
        .collect();
    let detectors: Vec<SyncValueDetector<'_>> = handles
        .iter()
        .map(|(slug, bv)| {
            (
                *slug,
                Box::new(move |v: &str| bv.accepts(v)) as Box<dyn Fn(&str) -> bool + Sync>,
            )
        })
        .collect();
    let detections = detect_by_values_batched(&columns, &detectors, engine.pool());

    for d in &detections {
        let column = &columns[d.column];
        println!(
            "  column {:>3} {:<12} detected as {:<11} (truth: {:?}), e.g. {:?}",
            d.column,
            column
                .header
                .as_deref()
                .map(|h| format!("{h:?}"))
                .unwrap_or_else(|| "<no header>".into()),
            d.slug,
            column.truth,
            column.values.first().unwrap()
        );
    }
    println!(
        "\n{} columns annotated with rich semantic types",
        detections.len()
    );
}

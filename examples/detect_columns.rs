//! Column-type detection over web tables (paper §9): synthesize detectors
//! for several types, then annotate a table corpus, exactly like the data-
//! preparation scenario in the paper's introduction (Figure 1).
//!
//! ```sh
//! cargo run --release --example detect_columns
//! ```

use autotype::{AutoType, AutoTypeConfig, NegativeMode};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_rank::Method;
use autotype_tables::{generate_columns, TableConfig, VALUE_THRESHOLD};
use autotype_typesys::by_slug;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let engine = AutoType::new(build_corpus(&CorpusConfig::default()), AutoTypeConfig::default());
    let mut rng = StdRng::seed_from_u64(7);

    // Synthesize a detector for each type of interest.
    let slugs = ["ipv4", "creditcard", "isbn", "email", "datetime"];
    let mut detectors = Vec::new();
    for slug in slugs {
        let ty = by_slug(slug).unwrap();
        let positives = ty.examples(&mut rng, 20);
        let mut session = engine
            .session(ty.keyword(), &positives, NegativeMode::Hierarchy, &mut rng)
            .expect("session");
        let top = session.rank(Method::DnfS).into_iter().next().expect("ranked");
        println!("{slug}: synthesized from {}", top.label);
        detectors.push((slug, session, top));
    }

    // A small column corpus (mirrors the sales-transactions table of the
    // paper's Figure 1: typed columns, dirty values, missing headers).
    let columns = generate_columns(
        &TableConfig {
            scale: 0.01,
            untyped: 30,
            ..Default::default()
        },
        &mut rng,
    );
    println!("\nannotating {} columns (>{:.0}% of values must pass):", columns.len(), VALUE_THRESHOLD * 100.0);

    let mut annotated = 0;
    for (idx, column) in columns.iter().enumerate() {
        for (slug, session, top) in detectors.iter_mut() {
            let accepted = column
                .values
                .iter()
                .filter(|v| session.validate(top, v))
                .count();
            if accepted as f64 / column.values.len().max(1) as f64 > VALUE_THRESHOLD {
                println!(
                    "  column {idx:>3} {:<12} detected as {slug:<11} (truth: {:?}), e.g. {:?}",
                    column
                        .header
                        .as_deref()
                        .map(|h| format!("{h:?}"))
                        .unwrap_or_else(|| "<no header>".into()),
                    column.truth,
                    column.values.first().unwrap()
                );
                annotated += 1;
                break;
            }
        }
    }
    println!("\n{annotated} columns annotated with rich semantic types");
}

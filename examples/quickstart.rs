//! Quickstart: synthesize a credit-card detector from positive examples.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the full AutoType pipeline (paper Definition 1): keyword
//! search over the synthetic open-source universe, candidate-function
//! analysis, automatic negative-example generation (S1→S2→S3), traced
//! execution, Best-k-Concise-DNF-Cover ranking, and validator synthesis.

use autotype::{AutoType, AutoTypeConfig, NegativeMode};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_rank::Method;
use autotype_typesys::by_slug;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The "open-source universe" (the stand-in for GitHub).
    let corpus = build_corpus(&CorpusConfig::default());
    println!(
        "corpus: {} repositories, {} installable packages",
        corpus.repositories.len(),
        corpus.packages.len()
    );
    let engine = AutoType::new(corpus, AutoTypeConfig::default());

    // 2. User input: a type name and ~20 positive examples. Here we draw
    //    them from the benchmark generator; in practice a user pastes a
    //    data column.
    let ty = by_slug("creditcard").unwrap();
    let mut rng = StdRng::seed_from_u64(2018);
    let positives = ty.examples(&mut rng, 20);
    println!("\npositive examples (first 5):");
    for p in positives.iter().take(5) {
        println!("  {p}");
    }

    // 3. Run the pipeline.
    let mut session = engine
        .session("credit card", &positives, NegativeMode::Hierarchy, &mut rng)
        .expect("search found candidate functions");
    println!(
        "\ndiscovered {} candidate functions; negatives accepted at strategy {:?}",
        session.candidate_count(),
        session.strategy
    );

    // 4. Rank with Best-k-Concise-DNF-Cover (DNF-S).
    let ranked = session.rank(Method::DnfS);
    println!("\ntop-5 synthesized type-detection functions:");
    for f in ranked.iter().take(5) {
        println!(
            "  [{:>4.2} pos / {:>4.2} neg]  {}",
            f.score, f.neg_fraction, f.label
        );
        println!("      DNF: {}", f.explanation);
    }

    // 5. Use the synthesized validator on fresh data.
    let top = ranked[0].clone();
    println!("\nvalidating fresh values with the synthesized function:");
    for value in [
        "4147202263232835", // valid Visa (paper Figure 6)
        "371449635398431",  // valid Amex
        "4147202263232836", // checksum broken
        "1234567890123456", // no brand, bad checksum
        "hello world",
    ] {
        println!("  {value:<20} -> {}", session.validate(&top, value));
    }
}

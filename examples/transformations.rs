//! Semantic transformations (paper §7.1 / Figure 4 / Table 3): once a type
//! is detected, the intermediate values of the mined functions become
//! type-specific derived columns — card brand from credit-card numbers,
//! country from IBANs, year/month/day from dates.
//!
//! ```sh
//! cargo run --release --example transformations
//! ```

use autotype::{AutoType, AutoTypeConfig, NegativeMode};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_rank::Method;
use autotype_typesys::by_slug;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let engine = AutoType::new(
        build_corpus(&CorpusConfig::default()),
        AutoTypeConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(99);

    for slug in ["creditcard", "iban", "datetime", "url", "vin"] {
        let ty = by_slug(slug).unwrap();
        let positives = ty.examples(&mut rng, 12);
        let Some(mut session) =
            engine.session(ty.keyword(), &positives, NegativeMode::Hierarchy, &mut rng)
        else {
            continue;
        };
        let ranked = session.rank(Method::DnfS);
        println!("== {} ==", ty.name);
        // Harvest from the top relevant functions (paper: top-10).
        let mut shown = std::collections::BTreeSet::new();
        for f in ranked.iter().take(16).cloned().collect::<Vec<_>>() {
            if f.intent != Some(ty.slug) {
                continue;
            }
            for t in session.transformations(&f) {
                if !shown.insert(t.name.clone()) {
                    continue;
                }
                let preview: Vec<String> = t.values.iter().flatten().take(3).cloned().collect();
                println!(
                    "  {:<28} ({} distinct)  e.g. {}",
                    t.name,
                    t.distinct,
                    preview.join(", ")
                );
            }
        }
        println!();
    }
}
